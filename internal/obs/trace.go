package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
)

// Event is one structured trace record. Layer names the emitting
// subsystem (dram, hammer), Kind the event class
// (act, ref, reset, trr, flip, blast, pattern, tune). The numeric
// fields are interpreted per kind; N is a generic magnitude (flips for
// a pattern event, weak cells for a blast event, the chosen NOP count
// for a tune event). The act/ref/reset kinds form a replayable command
// stream: internal/replay decodes a JSONL dump of them back into
// substrate commands and reproduces the recording session's flips.
type Event struct {
	Seq    uint64  `json:"seq"`
	TimeNS float64 `json:"t_ns,omitempty"`
	Layer  string  `json:"layer"`
	Kind   string  `json:"kind"`
	Bank   int     `json:"bank,omitempty"`
	Row    uint64  `json:"row,omitempty"`
	N      int64   `json:"n,omitempty"`
}

// Trace is a bounded ring buffer of events. It is single-writer by
// contract (one hammer session, which is single-goroutine); readers
// run after the writer is done. When the buffer is full the oldest
// events are overwritten — the retained suffix stays in emission order
// and Dropped counts the truncation.
//
// A nil *Trace is a valid disabled trace: Emit on nil is a no-op, so
// holders can keep an unconditional field and skip the branch.
type Trace struct {
	buf     []Event
	start   int // index of the oldest retained event
	n       int // number of retained events
	seq     uint64
	dropped uint64
}

// DefaultTraceCap is the per-session ring capacity used when tracing
// is enabled without an explicit size: large enough to hold the full
// TRR/flip/pattern history of a CI-sized cell, small enough that a
// campaign with hundreds of cells stays in tens of megabytes.
const DefaultTraceCap = 8192

// NewTrace returns a ring buffer retaining at most capacity events
// (DefaultTraceCap when capacity <= 0).
func NewTrace(capacity int) *Trace {
	if capacity <= 0 {
		capacity = DefaultTraceCap
	}
	return &Trace{buf: make([]Event, 0, capacity)}
}

// Emit appends an event, stamping its sequence number. Nil-safe.
func (t *Trace) Emit(e Event) {
	if t == nil {
		return
	}
	e.Seq = t.seq
	t.seq++
	if len(t.buf) < cap(t.buf) {
		t.buf = append(t.buf, e)
		t.n++
		return
	}
	// Full: overwrite the oldest slot. The ring never reorders — the
	// retained window is always the most recent cap(buf) events in
	// emission order.
	t.buf[t.start] = e
	t.start = (t.start + 1) % len(t.buf)
	t.dropped++
}

// Len returns the number of retained events.
func (t *Trace) Len() int {
	if t == nil {
		return 0
	}
	return t.n
}

// Dropped returns how many events were overwritten by the bound.
func (t *Trace) Dropped() uint64 {
	if t == nil {
		return 0
	}
	return t.dropped
}

// Events returns the retained events, oldest first.
func (t *Trace) Events() []Event {
	if t == nil {
		return nil
	}
	out := make([]Event, 0, t.n)
	for i := 0; i < t.n; i++ {
		out = append(out, t.buf[(t.start+i)%len(t.buf)])
	}
	return out
}

// WriteJSONL writes the retained events as one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, e := range t.Events() {
		if err := enc.Encode(e); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Collector groups per-session traces for one process run. Sessions
// register under a seed-derived key, so the dump order is a pure
// function of the run's seeds — deterministic for every worker count
// and schedule. Cell keys map to seeds through the run manifest.
type Collector struct {
	mu      sync.Mutex
	enabled bool
	capPer  int
	traces  map[string]*Trace
	order   []string
	// captures routes SessionTrace calls for reserved seeds into
	// per-scope Captures instead of the global pool, independently of
	// the enabled flag. Multiple captures reserving the same seed
	// round-robin, so concurrent identical jobs each record their own
	// rings.
	captures map[int64][]*Capture
}

// Traces is the process-global collector, armed by EnableTracing
// (cmd/experiments -trace, RHOHAMMER_TRACE).
var Traces = &Collector{}

// TraceEnv is the environment variable the commands consult for a
// default trace output path, mirroring hammer.SimcheckEnv: it reaches
// sessions created deep inside experiment code without threading a
// flag through every constructor.
const TraceEnv = "RHOHAMMER_TRACE"

// EnableTracing arms the global collector: every hammer session created
// afterwards records into its own bounded ring of the given capacity
// (<= 0 means DefaultTraceCap).
func EnableTracing(capPerSession int) {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	Traces.enabled = true
	Traces.capPer = capPerSession
	if Traces.traces == nil {
		Traces.traces = map[string]*Trace{}
	}
}

// DisableTracing disarms the collector and drops collected traces.
func DisableTracing() {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	Traces.enabled = false
	Traces.traces = nil
	Traces.order = nil
}

// TracingEnabled reports whether the global collector is armed.
func TracingEnabled() bool {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	return Traces.enabled
}

// SessionTrace returns a new ring registered under the session's seed,
// or nil when tracing is disabled. Seeds are unique per campaign cell
// (stats.SplitSeed over the spec name and cell key), so concurrent
// cells never share a ring; identical seeds (e.g. repeated manual
// sessions) get a #n suffix in registration order.
//
// A seed reserved by a Capture takes precedence over the global pool:
// the ring registers in that capture (even when global tracing is
// disabled) and never appears in the collector's own dump.
func SessionTrace(seed int64) *Trace {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	if list := Traces.captures[seed]; len(list) > 0 {
		c := list[0]
		if len(list) > 1 {
			// Round-robin so concurrent jobs sharing a seed each fill
			// their own capture rather than one capture taking all rings.
			copy(list, list[1:])
			list[len(list)-1] = c
		}
		return c.register(seed)
	}
	if !Traces.enabled {
		return nil
	}
	key := registerKey(Traces.traces, seed)
	t := NewTrace(Traces.capPer)
	Traces.traces[key] = t
	Traces.order = append(Traces.order, key)
	return t
}

// registerKey picks the session key for a seed in the given ring map:
// session-%016x, with a #n suffix when the key is already taken.
func registerKey(taken map[string]*Trace, seed int64) string {
	key := fmt.Sprintf("session-%016x", uint64(seed))
	if _, dup := taken[key]; !dup {
		return key
	}
	for i := 2; ; i++ {
		k := fmt.Sprintf("%s#%d", key, i)
		if _, dup := taken[k]; !dup {
			return k
		}
	}
}

// Sessions returns the registered trace keys in sorted order (the dump
// order), with their rings.
func (c *Collector) Sessions() (keys []string, traces []*Trace) {
	c.mu.Lock()
	defer c.mu.Unlock()
	keys = append(keys, c.order...)
	sort.Strings(keys)
	for _, k := range keys {
		traces = append(traces, c.traces[k])
	}
	return keys, traces
}

// WriteJSONL dumps every collected trace as JSONL, sessions in sorted
// key order, events within a session in emission order. Each line
// gains a "session" field identifying its ring.
func (c *Collector) WriteJSONL(w io.Writer) error {
	keys, traces := c.Sessions()
	return writeSessionsJSONL(w, keys, traces)
}

// writeSessionsJSONL is the shared JSONL emission: one line per event
// with the session key stamped in, plus a "truncated" marker line for
// any ring that overflowed (so downstream consumers — the replay codec
// in particular — can refuse an incomplete command stream instead of
// replaying it wrong).
func writeSessionsJSONL(w io.Writer, keys []string, traces []*Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i, key := range keys {
		for _, e := range traces[i].Events() {
			line := struct {
				Session string `json:"session"`
				Event
			}{Session: key, Event: e}
			if err := enc.Encode(line); err != nil {
				return err
			}
		}
		if d := traces[i].Dropped(); d > 0 {
			if _, err := fmt.Fprintf(bw, "{\"session\":%q,\"kind\":\"truncated\",\"n\":%d}\n", key, d); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

// Capture collects the session traces of one bounded scope — the serve
// layer uses one per job — without touching the global tracing switch.
// Reserve routes future SessionTrace calls for a seed into this
// capture; Release detaches it. Captures work whether or not global
// tracing is enabled, and captured rings never leak into the global
// collector's dump.
type Capture struct {
	capPer int
	// seeds are the reservations to undo on Release; rings/order hold
	// the registered traces keyed like the collector's. All fields are
	// guarded by Traces.mu (captures are part of the collector's
	// routing state, so one lock covers both).
	seeds  []int64
	traces map[string]*Trace
	order  []string
}

// NewCapture returns an empty capture whose rings retain at most
// capPerSession events each (<= 0 means DefaultTraceCap).
func NewCapture(capPerSession int) *Capture {
	return &Capture{capPer: capPerSession, traces: map[string]*Trace{}}
}

// Reserve routes SessionTrace(seed) calls into this capture until
// Release. Reserving the same seed again is a no-op.
func (c *Capture) Reserve(seed int64) {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	for _, s := range c.seeds {
		if s == seed {
			return
		}
	}
	if Traces.captures == nil {
		Traces.captures = map[int64][]*Capture{}
	}
	Traces.captures[seed] = append(Traces.captures[seed], c)
	c.seeds = append(c.seeds, seed)
}

// Release undoes every reservation. The captured rings stay readable;
// sessions created afterwards fall back to the global pool.
func (c *Capture) Release() {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	for _, seed := range c.seeds {
		list := Traces.captures[seed]
		kept := list[:0]
		for _, cc := range list {
			if cc != c {
				kept = append(kept, cc)
			}
		}
		if len(kept) == 0 {
			delete(Traces.captures, seed)
		} else {
			Traces.captures[seed] = kept
		}
	}
	c.seeds = nil
}

// register creates and keys a new ring in the capture. Caller holds
// Traces.mu.
func (c *Capture) register(seed int64) *Trace {
	key := registerKey(c.traces, seed)
	t := NewTrace(c.capPer)
	c.traces[key] = t
	c.order = append(c.order, key)
	return t
}

// Len reports how many session rings the capture holds.
func (c *Capture) Len() int {
	Traces.mu.Lock()
	defer Traces.mu.Unlock()
	return len(c.order)
}

// WriteJSONL dumps the captured traces in the collector's format:
// sessions in sorted key order, events in emission order, truncated
// markers for overflowed rings. Keys derive from seeds alone, so for a
// campaign job the bytes are deterministic across worker counts and
// schedules.
func (c *Capture) WriteJSONL(w io.Writer) error {
	Traces.mu.Lock()
	keys := append([]string(nil), c.order...)
	sort.Strings(keys)
	traces := make([]*Trace, 0, len(keys))
	for _, k := range keys {
		traces = append(traces, c.traces[k])
	}
	Traces.mu.Unlock()
	return writeSessionsJSONL(w, keys, traces)
}
