package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"testing"
)

// TestTraceTruncatesWithoutReordering is the ring-buffer contract: when
// more events arrive than the bound retains, the kept window is exactly
// the most recent `cap` events, still in emission order, and Dropped
// accounts for the rest.
func TestTraceTruncatesWithoutReordering(t *testing.T) {
	const capacity, emitted = 64, 157
	tr := NewTrace(capacity)
	for i := 0; i < emitted; i++ {
		tr.Emit(Event{Layer: "dram", Kind: "act", Row: uint64(i)})
	}
	if tr.Len() != capacity {
		t.Fatalf("Len = %d, want %d", tr.Len(), capacity)
	}
	if got, want := tr.Dropped(), uint64(emitted-capacity); got != want {
		t.Fatalf("Dropped = %d, want %d", got, want)
	}
	events := tr.Events()
	for i, e := range events {
		wantSeq := uint64(emitted - capacity + i)
		if e.Seq != wantSeq || e.Row != wantSeq {
			t.Fatalf("event %d = seq %d row %d, want %d (reordered or lost)", i, e.Seq, e.Row, wantSeq)
		}
		if i > 0 && e.Seq != events[i-1].Seq+1 {
			t.Fatalf("non-contiguous retained window at %d", i)
		}
	}
}

func TestNilTraceIsInert(t *testing.T) {
	var tr *Trace
	tr.Emit(Event{Kind: "act"}) // must not panic
	if tr.Len() != 0 || tr.Dropped() != 0 || tr.Events() != nil {
		t.Fatal("nil trace not inert")
	}
}

func TestTraceWriteJSONL(t *testing.T) {
	tr := NewTrace(8)
	tr.Emit(Event{TimeNS: 1.5, Layer: "dram", Kind: "flip", Bank: 2, Row: 500, N: 3})
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var e Event
	if err := json.Unmarshal(buf.Bytes(), &e); err != nil {
		t.Fatalf("invalid JSONL: %v", err)
	}
	if e.Kind != "flip" || e.Bank != 2 || e.Row != 500 || e.N != 3 {
		t.Fatalf("round trip = %+v", e)
	}
}

// TestCollectorDeterministicOrder checks that the collector dumps
// sessions in sorted key order regardless of registration order, so a
// trace file is identical for every worker schedule.
func TestCollectorDeterministicOrder(t *testing.T) {
	defer DisableTracing()
	EnableTracing(16)
	if !TracingEnabled() {
		t.Fatal("tracing not enabled")
	}
	// Register out of sorted order.
	for _, seed := range []int64{0x30, 0x10, 0x20, 0x10} { // duplicate 0x10 gets #2
		tr := SessionTrace(seed)
		if tr == nil {
			t.Fatal("SessionTrace returned nil while enabled")
		}
		tr.Emit(Event{Layer: "hammer", Kind: "pattern", N: seed})
	}
	var buf bytes.Buffer
	if err := Traces.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var sessions []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		var line struct {
			Session string `json:"session"`
		}
		if err := json.Unmarshal(sc.Bytes(), &line); err != nil {
			t.Fatal(err)
		}
		sessions = append(sessions, line.Session)
	}
	want := []string{
		"session-0000000000000010",
		"session-0000000000000010#2",
		"session-0000000000000020",
		"session-0000000000000030",
	}
	if len(sessions) != len(want) {
		t.Fatalf("sessions = %v", sessions)
	}
	for i := range want {
		if sessions[i] != want[i] {
			t.Fatalf("dump order %v, want %v", sessions, want)
		}
	}

	DisableTracing()
	if SessionTrace(1) != nil {
		t.Fatal("SessionTrace must return nil when disabled")
	}
}
