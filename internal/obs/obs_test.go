package obs

import (
	"strings"
	"sync"
	"testing"
)

func TestCounterRegistry(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total")
	if again := r.Counter("x_total"); again != c {
		t.Fatal("Counter is not get-or-create")
	}
	c.Add(40)
	c.Inc()
	c.AddUint(1)
	if got := c.Load(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	r.Gauge("g", func() int64 { return 7 })

	snap := r.Snapshot()
	if len(snap) != 2 || snap[0].Name != "g" || snap[0].Value != 7 ||
		snap[1].Name != "x_total" || snap[1].Value != 42 {
		t.Fatalf("snapshot = %v", snap)
	}
	if v := r.Values(); v["x_total"] != 42 || v["g"] != 7 {
		t.Fatalf("values = %v", v)
	}

	var sb strings.Builder
	if err := r.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	want := "# TYPE g gauge\ng 7\n# TYPE x_total counter\nx_total 42\n"
	if sb.String() != want {
		t.Fatalf("prometheus text:\n%s\nwant:\n%s", sb.String(), want)
	}

	r.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset did not zero counters")
	}
}

func TestCounterConcurrentAdds(t *testing.T) {
	r := NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared_total")
			for j := 0; j < 1000; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared_total").Load(); got != 8000 {
		t.Fatalf("concurrent adds = %d, want 8000", got)
	}
}

func TestManifestRoundTrip(t *testing.T) {
	m := NewManifest("experiments", []string{"-seed", "42", "table3"})
	m.Seed, m.Scale, m.Workers = 42, 0.5, 4
	m.Runs = []RunRecord{{
		Name: "table3", WallNS: 123, Workers: 4,
		Cells: []CellRecord{{Key: "alder/rho-s", Seed: 99, WallNS: 61, Attempts: 1}},
	}}
	path := t.TempDir() + "/manifest.json"
	if err := m.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	if m.GoVersion == "" || m.NumCPU <= 0 {
		t.Fatalf("build identity not stamped: %+v", m)
	}
}
