// Package obs is the simulator's observability layer: process-global
// atomic counters and gauges, a bounded structured event trace, and the
// run-manifest types that make every rendered table and figure
// reproducible from its recorded inputs alone.
//
// The layer exists to open the black box the ROADMAP's serving goal
// cannot tolerate: a campaign that hammers for minutes must expose how
// many activations, refreshes, TRR triggers and flips the substrate
// processed, how well the hot caches performed (memctrl decode cache,
// hammer program cache), and how the campaign workers spent their time.
// HammerSim-style simulators live or die by this attribution, and the
// same counters back the BENCH_*.json trajectory.
//
// Design contract — observation must be free when off and inert when on:
//
//   - Nothing in this package ever touches an RNG stream, so enabling
//     metrics or tracing cannot perturb simulation results; the golden
//     hashes in internal/experiments pin this.
//   - The disabled path costs at most a nil-pointer or atomic-bool
//     check in the hot layers and allocates nothing (the PR 1 benchmark
//     contract of 0 steady-state allocs/op is preserved).
//   - Counters are snapshotted — by cmd/experiments (-metrics), by
//     cmd/bench (into BENCH_*.json) and into run manifests — in a
//     Prometheus-style text format, never scraped mid-flight from hot
//     structs.
//
// The three faces map to the files of this package: counters/gauges
// (obs.go), the per-session JSONL event trace (trace.go), and the run
// manifest (manifest.go).
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled gates the cold-boundary counter flushes in the hot layers
// (hammer pattern completion, campaign cell completion). A single
// atomic load on the disabled path.
var enabled atomic.Bool

// SetEnabled turns global counter aggregation on or off.
func SetEnabled(on bool) { enabled.Store(on) }

// Enabled reports whether counter aggregation is on.
func Enabled() bool { return enabled.Load() }

// Counter is a named, monotonically increasing atomic counter. The zero
// value is unusable; obtain counters from a Registry.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// AddUint increments the counter by a uint64 delta (the hot layers
// keep their internal counters unsigned).
func (c *Counter) AddUint(n uint64) { c.v.Add(int64(n)) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// reset zeroes the counter (Registry.Reset only).
func (c *Counter) reset() { c.v.Store(0) }

// Metric is one snapshotted (name, value) pair.
type Metric struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// Registry holds named counters and gauges. Counter lookups after
// registration are lock-free (callers hold *Counter); Snapshot takes
// the registry lock once.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]func() int64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]func() int64{},
	}
}

// Default is the process-global registry the standard counters below
// live in; cmd/experiments and cmd/bench snapshot it.
var Default = NewRegistry()

// Counter returns the registry's counter with the given name, creating
// it on first use. Safe for concurrent callers.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	if c, ok := r.counters[name]; ok {
		return c
	}
	c := &Counter{name: name}
	r.counters[name] = c
	return c
}

// Gauge registers a polled gauge: fn is evaluated at snapshot time.
// Re-registering a name replaces the previous function.
func (r *Registry) Gauge(name string, fn func() int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.gauges[name] = fn
}

// Snapshot returns every counter and gauge value, sorted by name.
func (r *Registry) Snapshot() []Metric {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Value: c.Load()})
	}
	for name, fn := range r.gauges {
		out = append(out, Metric{Name: name, Value: fn()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Values returns the snapshot as a map, for JSON embedding (run
// manifests, BENCH_*.json).
func (r *Registry) Values() map[string]int64 {
	snap := r.Snapshot()
	out := make(map[string]int64, len(snap))
	for _, m := range snap {
		out[m.Name] = m.Value
	}
	return out
}

// WritePrometheus emits the snapshot in the Prometheus text exposition
// format (counters as TYPE counter, gauges as TYPE gauge).
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	gaugeNames := make(map[string]bool, len(r.gauges))
	for name := range r.gauges {
		gaugeNames[name] = true
	}
	r.mu.Unlock()
	for _, m := range r.Snapshot() {
		kind := "counter"
		if gaugeNames[m.Name] {
			kind = "gauge"
		}
		if _, err := fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.Name, kind, m.Name, m.Value); err != nil {
			return err
		}
	}
	return nil
}

// Reset zeroes every counter (gauges poll live state and are
// unaffected). Used by tests and by per-run scoping in the commands.
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.reset()
	}
}

// Standard counters. The hot layers flush their plain internal counters
// into these at cold boundaries: the dram/memctrl deltas at every
// hammered pattern (internal/hammer), the campaign figures at every
// cell completion (internal/campaign). Names follow the Prometheus
// convention of a rhohammer_ prefix and a _total suffix.
var (
	DramACTs     = Default.Counter("rhohammer_dram_activations_total")
	DramREFs     = Default.Counter("rhohammer_dram_refreshes_total")
	DramTRR      = Default.Counter("rhohammer_dram_trr_triggers_total")
	DramFlips    = Default.Counter("rhohammer_dram_flips_total")
	DramRFM      = Default.Counter("rhohammer_dram_rfm_events_total")
	DramRowSwaps = Default.Counter("rhohammer_dram_rowswap_relocations_total")

	CtrlAccesses   = Default.Counter("rhohammer_memctrl_accesses_total")
	CtrlRowHits    = Default.Counter("rhohammer_memctrl_row_hits_total")
	CtrlConflicts  = Default.Counter("rhohammer_memctrl_row_conflicts_total")
	CtrlDecodeHits = Default.Counter("rhohammer_memctrl_decode_hits_total")
	CtrlDecodeMiss = Default.Counter("rhohammer_memctrl_decode_misses_total")

	HammerPatterns   = Default.Counter("rhohammer_hammer_patterns_total")
	HammerProgBuilds = Default.Counter("rhohammer_hammer_program_builds_total")
	HammerProgHits   = Default.Counter("rhohammer_hammer_program_cache_hits_total")
	HammerTunes      = Default.Counter("rhohammer_hammer_tune_runs_total")

	// Compiled-payload path (internal/cpu payload executor): schedule
	// compilations, session payload-cache outcomes, and activation
	// batches handed to the DRAM device.
	HammerPayloadCompiles = Default.Counter("rhohammer_hammer_payload_compile_total")
	HammerPayloadHits     = Default.Counter("rhohammer_hammer_payload_cache_hit_total")
	HammerPayloadMiss     = Default.Counter("rhohammer_hammer_payload_cache_miss_total")
	HammerPayloadBatches  = Default.Counter("rhohammer_hammer_payload_exec_batch_total")

	// Chain pipeline (internal/chain engine): end-to-end attack runs,
	// per-phase work items and simulated time. Flushed once per
	// Engine.Run at the cold end of the pipeline.
	ChainRuns          = Default.Counter("rhohammer_chain_runs_total")
	ChainRegions       = Default.Counter("rhohammer_chain_regions_total")
	ChainTemplateFlips = Default.Counter("rhohammer_chain_template_flips_total")
	ChainTargets       = Default.Counter("rhohammer_chain_targets_total")
	ChainAttempts      = Default.Counter("rhohammer_chain_attempts_total")
	ChainSuccesses     = Default.Counter("rhohammer_chain_successes_total")
	ChainAllocNS       = Default.Counter("rhohammer_chain_alloc_ns_total")
	ChainTemplateNS    = Default.Counter("rhohammer_chain_template_ns_total")
	ChainVictimNS      = Default.Counter("rhohammer_chain_victim_ns_total")

	CampaignCells    = Default.Counter("rhohammer_campaign_cells_total")
	CampaignFailures = Default.Counter("rhohammer_campaign_cell_failures_total")
	CampaignRetries  = Default.Counter("rhohammer_campaign_cell_retries_total")
	CampaignBusyNS   = Default.Counter("rhohammer_campaign_busy_ns_total")
	CampaignWallNS   = Default.Counter("rhohammer_campaign_wall_ns_total")

	// Work-stealing pool (campaign.Pool): steal events and cells moved.
	CampaignSteals      = Default.Counter("rhohammer_campaign_steals_total")
	CampaignStolenCells = Default.Counter("rhohammer_campaign_stolen_cells_total")

	// Distributed fabric (serve coordinator): lease grants/renewals/
	// completions and deadline-based reclaims of expired leases.
	LeaseGrants      = Default.Counter("rhohammer_lease_grants_total")
	LeaseRenewals    = Default.Counter("rhohammer_lease_renewals_total")
	LeaseCompletions = Default.Counter("rhohammer_lease_completions_total")
	LeaseReclaims    = Default.Counter("rhohammer_lease_reclaims_total")
	LeaseCellsLeased = Default.Counter("rhohammer_lease_cells_leased_total")
)
