package pattern

import "rhohammer/internal/stats"

// Mutation: once fuzzing finds an effective pattern, the Blacksmith-style
// workflow refines it by replaying mutated variants and keeping
// improvements. Mutations perturb one dimension at a time — frequency,
// phase, amplitude, or an offset — so the refined pattern stays in the
// neighborhood that already bypasses the target's TRR.

// Mutate returns a copy of p with one randomly chosen small perturbation.
// The result is always valid.
func Mutate(p *Pattern, r *stats.Rand) *Pattern {
	out := clone(p)
	if len(out.Tuples) == 0 {
		return out
	}
	ti := r.Intn(len(out.Tuples))
	t := &out.Tuples[ti]
	switch r.Intn(4) {
	case 0: // frequency step
		step := 1 + r.Intn(4)
		if r.Intn(2) == 0 && t.Freq > step {
			t.Freq -= step
		} else {
			t.Freq += step
		}
		if t.Freq > out.Slots/2 {
			t.Freq = out.Slots / 2
		}
	case 1: // phase shift
		t.Phase = (t.Phase + 1 + r.Intn(7)) % out.Slots
	case 2: // amplitude step
		if r.Intn(2) == 0 && t.Amplitude > 1 {
			t.Amplitude--
		} else if t.Amplitude < 8 {
			t.Amplitude++
		}
	case 3: // slide the tuple's offsets by a small even distance,
		// preserving the double-sided victim geometry
		delta := 2 * (1 + r.Intn(2))
		if r.Intn(2) == 0 {
			delta = -delta
		}
		ok := true
		for _, o := range t.Offsets {
			if o+delta < 0 {
				ok = false
			}
		}
		if ok {
			for i := range t.Offsets {
				t.Offsets[i] += delta
			}
		}
	}
	out.ID = p.ID*31 + uint64(r.Intn(1<<16)) + 1
	return out
}

// clone deep-copies a pattern. All offset slices share one backing
// array (sliced with full-slice expressions, so appends cannot bleed
// between tuples): mutation-heavy refinement loops clone once per
// candidate, and the per-tuple mini-allocations showed up in the
// fuzzing campaign's heap profile.
func clone(p *Pattern) *Pattern {
	out := &Pattern{
		ID:     p.ID,
		Slots:  p.Slots,
		Tuples: make([]Tuple, len(p.Tuples)),
	}
	nOff := 0
	for _, t := range p.Tuples {
		nOff += len(t.Offsets)
	}
	backing := make([]int, 0, nOff)
	for i, t := range p.Tuples {
		lo := len(backing)
		backing = append(backing, t.Offsets...)
		nt := t
		nt.Offsets = backing[lo:len(backing):len(backing)]
		out.Tuples[i] = nt
	}
	return out
}
