package pattern

import "rhohammer/internal/stats"

// FuzzParams bounds the random pattern generator. Zero values select the
// defaults used throughout the evaluation.
type FuzzParams struct {
	MinPairs     int // double-sided aggressor pairs, default 3
	MaxPairs     int // default 8
	MinDecoys    int // sacrificial high-frequency tuples, default 2
	MaxDecoys    int // default 3
	MaxOffset    int // largest aggressor row offset, default 48
	BaseSlots    int // nominal period length, default 160
	MaxAmplitude int // default 4
}

func (p FuzzParams) withDefaults() FuzzParams {
	if p.MinPairs == 0 {
		p.MinPairs = 3
	}
	if p.MaxPairs == 0 {
		p.MaxPairs = 8
	}
	if p.MinDecoys == 0 {
		p.MinDecoys = 2
	}
	if p.MaxDecoys == 0 {
		p.MaxDecoys = 3
	}
	if p.MaxOffset == 0 {
		p.MaxOffset = 48
	}
	if p.BaseSlots == 0 {
		p.BaseSlots = 160
	}
	if p.MaxAmplitude == 0 {
		p.MaxAmplitude = 4
	}
	return p
}

// Fuzzer generates pseudo-random unique non-uniform patterns, mirroring
// the Blacksmith fuzzing loop: every candidate combines a few intense
// decoy tuples (meant to own the TRR sampler) with double-sided
// aggressor pairs at lower frequencies, randomizing counts, offsets,
// frequencies, phases and amplitudes. Whether a particular draw actually
// bypasses the target's TRR — and survives the platform's speculative
// disorder — is exactly what the fuzzing campaign measures.
type Fuzzer struct {
	Params FuzzParams
	rand   *stats.Rand
	nextID uint64
}

// NewFuzzer creates a fuzzer over the given parameter box.
func NewFuzzer(p FuzzParams, r *stats.Rand) *Fuzzer {
	return &Fuzzer{Params: p.withDefaults(), rand: r, nextID: 1000}
}

// Next generates one fresh random pattern.
func (f *Fuzzer) Next() *Pattern {
	p := f.Params
	r := f.rand
	f.nextID++
	pat := &Pattern{
		ID:    f.nextID,
		Slots: p.BaseSlots,
	}

	// Reserve the upper offset range for decoys so they never sit
	// adjacent to the pairs' victims.
	decoyBase := p.MaxOffset * 3 / 4

	// One backing array serves every tuple's offsets and the tuple
	// slice is sized for the worst case up front; the fuzzing campaigns
	// draw hundreds of thousands of candidates, so per-tuple
	// mini-allocations add up. Neither preallocation consumes a random
	// draw, so the generated stream is unchanged.
	nDecoys := p.MinDecoys + r.Intn(p.MaxDecoys-p.MinDecoys+1)
	pat.Tuples = make([]Tuple, 0, nDecoys+p.MaxPairs)
	offs := make([]int, 0, nDecoys+2*p.MaxPairs)
	for i := 0; i < nDecoys; i++ {
		freq := pat.Slots/8 + r.Intn(pat.Slots/4) // intense: 1/8 .. 3/8 of slots
		lo := len(offs)
		offs = append(offs, decoyBase+i*4+r.Intn(3))
		pat.Tuples = append(pat.Tuples, Tuple{
			Offsets:   offs[lo:len(offs):len(offs)],
			Freq:      freq,
			Phase:     r.Intn(4),
			Amplitude: 1,
		})
	}

	nPairs := p.MinPairs + r.Intn(p.MaxPairs-p.MinPairs+1)
	for i := 0; i < nPairs; i++ {
		base := r.Intn(decoyBase - 4)
		freq := 4 + r.Intn(pat.Slots/10)
		amp := 1
		if r.Float64() < 0.3 {
			amp = 2 + r.Intn(p.MaxAmplitude-1)
		}
		lo := len(offs)
		offs = append(offs, base, base+2)
		pat.Tuples = append(pat.Tuples, Tuple{
			Offsets:   offs[lo:len(offs):len(offs)],
			Freq:      freq,
			Phase:     r.Intn(pat.Slots / 4),
			Amplitude: amp,
		})
	}
	return pat
}
