package pattern

import (
	"testing"

	"rhohammer/internal/stats"
)

func TestPatternJSONRoundTrip(t *testing.T) {
	orig := KnownGood()
	data, err := orig.Encode()
	if err != nil {
		t.Fatal(err)
	}
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if back.String() != orig.String() {
		t.Errorf("round trip changed pattern:\n %s\n %s", orig, back)
	}
	// The rendered sequences must be identical.
	a, b := orig.Render(), back.Render()
	if len(a) != len(b) {
		t.Fatal("render lengths differ")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("render differs at %d", i)
		}
	}
}

func TestDecodeRejectsInvalid(t *testing.T) {
	cases := []string{
		`not json`,
		`{"id":1,"slots":0,"tuples":[{"offsets":[1],"freq":1,"amplitude":1}]}`,
		`{"id":1,"slots":10,"tuples":[]}`,
		`{"id":1,"slots":10,"tuples":[{"offsets":[-2],"freq":1,"amplitude":1}]}`,
	}
	for i, c := range cases {
		if _, err := Decode([]byte(c)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestFuzzedPatternsRoundTrip(t *testing.T) {
	fz := NewFuzzer(FuzzParams{}, stats.NewRand(5))
	for i := 0; i < 50; i++ {
		p := fz.Next()
		data, err := p.Encode()
		if err != nil {
			t.Fatal(err)
		}
		back, err := Decode(data)
		if err != nil {
			t.Fatalf("pattern %d: %v", i, err)
		}
		if back.String() != p.String() {
			t.Fatalf("pattern %d changed in round trip", i)
		}
	}
}
