package pattern

import (
	"testing"
	"testing/quick"

	"rhohammer/internal/stats"
)

func TestRenderCountsPerTuple(t *testing.T) {
	p := &Pattern{
		ID:    1,
		Slots: 100,
		Tuples: []Tuple{
			{Offsets: []int{0, 2}, Freq: 10, Phase: 0, Amplitude: 1},
			{Offsets: []int{8}, Freq: 20, Phase: 1, Amplitude: 2},
		},
	}
	seq := p.Render()
	counts := map[int]int{}
	for _, off := range seq {
		counts[off]++
	}
	if counts[0] != 10 || counts[2] != 10 {
		t.Errorf("pair counts = %d/%d, want 10/10", counts[0], counts[2])
	}
	if counts[8] != 40 { // freq 20 x amplitude 2
		t.Errorf("decoy count = %d, want 40", counts[8])
	}
	if len(seq) != 60 {
		t.Errorf("sequence length = %d, want 60", len(seq))
	}
}

func TestRenderInterleavesUniformly(t *testing.T) {
	// A high-frequency tuple must appear in every sub-window of the
	// sequence — the property TRR evasion depends on.
	p := KnownGood()
	seq := p.Render()
	window := len(seq) / 8
	for w := 0; w+window <= len(seq); w += window {
		found := false
		for _, off := range seq[w : w+window] {
			if off == 40 || off == 46 {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("window at %d contains no decoy access", w)
		}
	}
}

func TestRenderAmplitude(t *testing.T) {
	p := &Pattern{
		ID:    1,
		Slots: 20,
		Tuples: []Tuple{
			{Offsets: []int{0, 2}, Freq: 2, Phase: 0, Amplitude: 3},
		},
	}
	seq := p.Render()
	want := []int{0, 2, 0, 2, 0, 2}
	if len(seq) != 12 {
		t.Fatalf("sequence %v", seq)
	}
	for i := 0; i < 6; i++ {
		if seq[i] != want[i] {
			t.Errorf("seq[%d] = %d, want %d (amplitude interleaving)", i, seq[i], want[i])
		}
	}
}

func TestRenderEmptyAndDegenerate(t *testing.T) {
	if (&Pattern{Slots: 0}).Render() != nil {
		t.Error("zero-slot pattern rendered")
	}
	p := &Pattern{Slots: 10, Tuples: []Tuple{{Offsets: nil, Freq: 2}}}
	if len(p.Render()) != 0 {
		t.Error("tuple without offsets rendered")
	}
	p2 := &Pattern{Slots: 10, Tuples: []Tuple{{Offsets: []int{1}, Freq: 0}}}
	if len(p2.Render()) != 0 {
		t.Error("zero-frequency tuple rendered")
	}
}

func TestMaxOffsetAndAggressors(t *testing.T) {
	p := KnownGood()
	if p.MaxOffset() != 46 {
		t.Errorf("MaxOffset = %d", p.MaxOffset())
	}
	offs := p.AggressorOffsets()
	want := []int{0, 2, 8, 10, 16, 18, 24, 26, 40, 46}
	if len(offs) != len(want) {
		t.Fatalf("aggressors %v", offs)
	}
	for i := range want {
		if offs[i] != want[i] {
			t.Errorf("aggressor %d = %d, want %d", i, offs[i], want[i])
		}
	}
}

func TestVictimOffsets(t *testing.T) {
	p := &Pattern{Slots: 10, Tuples: []Tuple{{Offsets: []int{4, 6}, Freq: 2, Amplitude: 1}}}
	victims := p.VictimOffsets()
	// Aggressors 4 and 6: victims are all neighbors within distance 2
	// that are not aggressors themselves: 2,3,5,7,8.
	want := []int{2, 3, 5, 7, 8}
	if len(victims) != len(want) {
		t.Fatalf("victims %v, want %v", victims, want)
	}
	for i := range want {
		if victims[i] != want[i] {
			t.Errorf("victim %d = %d, want %d", i, victims[i], want[i])
		}
	}
}

func TestValidate(t *testing.T) {
	if err := KnownGood().Validate(); err != nil {
		t.Errorf("KnownGood invalid: %v", err)
	}
	if err := KnownGoodTight().Validate(); err != nil {
		t.Errorf("KnownGoodTight invalid: %v", err)
	}
	if err := DoubleSided(64).Validate(); err != nil {
		t.Errorf("DoubleSided invalid: %v", err)
	}
	bad := []*Pattern{
		{Slots: 0, Tuples: []Tuple{{Offsets: []int{1}, Freq: 1}}},
		{Slots: 10},
		{Slots: 10, Tuples: []Tuple{{Freq: 1}}},
		{Slots: 10, Tuples: []Tuple{{Offsets: []int{1}, Freq: 0}}},
		{Slots: 10, Tuples: []Tuple{{Offsets: []int{1}, Freq: 1, Amplitude: -1}}},
		{Slots: 10, Tuples: []Tuple{{Offsets: []int{-3}, Freq: 1}}},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad pattern %d validated", i)
		}
	}
}

func TestPatternString(t *testing.T) {
	if s := KnownGood().String(); s == "" {
		t.Error("empty pattern string")
	}
}

func TestFuzzerBounds(t *testing.T) {
	fz := NewFuzzer(FuzzParams{}, stats.NewRand(1))
	params := fz.Params
	for i := 0; i < 200; i++ {
		p := fz.Next()
		if err := p.Validate(); err != nil {
			t.Fatalf("fuzzer produced invalid pattern: %v", err)
		}
		if p.MaxOffset() > params.MaxOffset+2 {
			t.Errorf("offset %d beyond box %d", p.MaxOffset(), params.MaxOffset)
		}
		nDecoys, nPairs := 0, 0
		for _, tp := range p.Tuples {
			if len(tp.Offsets) == 1 {
				nDecoys++
			} else {
				nPairs++
			}
		}
		if nDecoys < params.MinDecoys || nDecoys > params.MaxDecoys {
			t.Errorf("decoy count %d outside [%d,%d]", nDecoys, params.MinDecoys, params.MaxDecoys)
		}
		if nPairs < params.MinPairs || nPairs > params.MaxPairs {
			t.Errorf("pair count %d outside [%d,%d]", nPairs, params.MinPairs, params.MaxPairs)
		}
	}
}

func TestFuzzerUniqueIDs(t *testing.T) {
	fz := NewFuzzer(FuzzParams{}, stats.NewRand(2))
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		p := fz.Next()
		if seen[p.ID] {
			t.Fatalf("duplicate pattern id %d", p.ID)
		}
		seen[p.ID] = true
	}
}

func TestFuzzerDeterminism(t *testing.T) {
	a := NewFuzzer(FuzzParams{}, stats.NewRand(3))
	b := NewFuzzer(FuzzParams{}, stats.NewRand(3))
	for i := 0; i < 20; i++ {
		pa, pb := a.Next(), b.Next()
		if pa.String() != pb.String() {
			t.Fatalf("same seed produced different patterns at %d", i)
		}
	}
}

// Property: rendered length equals the sum of freq*amplitude*len(offsets)
// over tuples, and every rendered offset belongs to some tuple.
func TestRenderConsistencyProperty(t *testing.T) {
	fz := NewFuzzer(FuzzParams{}, stats.NewRand(4))
	f := func(unused uint8) bool {
		p := fz.Next()
		want := 0
		valid := map[int]bool{}
		for _, tp := range p.Tuples {
			amp := tp.Amplitude
			if amp < 1 {
				amp = 1
			}
			want += tp.Freq * amp * len(tp.Offsets)
			for _, o := range tp.Offsets {
				valid[o] = true
			}
		}
		seq := p.Render()
		if len(seq) != want {
			return false
		}
		for _, off := range seq {
			if !valid[off] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestDoubleSidedStructure(t *testing.T) {
	p := DoubleSided(64)
	seq := p.Render()
	if len(seq) != 64 {
		t.Fatalf("length %d", len(seq))
	}
	for i, off := range seq {
		want := 0
		if i%2 == 1 {
			want = 2
		}
		if off != want {
			t.Fatalf("seq[%d] = %d, want alternating 0/2", i, off)
		}
	}
}
