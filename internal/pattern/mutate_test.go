package pattern

import (
	"testing"

	"rhohammer/internal/stats"
)

func TestMutateStaysValid(t *testing.T) {
	r := stats.NewRand(3)
	p := KnownGood()
	for i := 0; i < 500; i++ {
		m := Mutate(p, r)
		if err := m.Validate(); err != nil {
			t.Fatalf("mutation %d invalid: %v", i, err)
		}
		if m.ID == p.ID {
			t.Fatal("mutation did not change the ID")
		}
		p = m // walk the chain
	}
}

func TestMutateDoesNotAliasInput(t *testing.T) {
	r := stats.NewRand(4)
	orig := KnownGood()
	origStr := orig.String()
	for i := 0; i < 200; i++ {
		Mutate(orig, r)
	}
	if orig.String() != origStr {
		t.Error("Mutate modified its input")
	}
}

func TestMutatePreservesPairGeometry(t *testing.T) {
	r := stats.NewRand(5)
	p := KnownGood()
	for i := 0; i < 300; i++ {
		p = Mutate(p, r)
		for _, tp := range p.Tuples {
			if len(tp.Offsets) == 2 && tp.Offsets[1]-tp.Offsets[0] != 2 {
				t.Fatalf("pair geometry broken: %v", tp.Offsets)
			}
		}
	}
}
