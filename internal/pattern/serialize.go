package pattern

import (
	"encoding/json"
	"fmt"
)

// Serialization: effective patterns are the valuable output of a fuzzing
// campaign — the real tools save them and replay them later on other
// locations or machines. Patterns marshal to a compact, stable JSON
// form.

// patternJSON is the wire form of a Pattern.
type patternJSON struct {
	ID     uint64      `json:"id"`
	Slots  int         `json:"slots"`
	Tuples []tupleJSON `json:"tuples"`
}

type tupleJSON struct {
	Offsets   []int `json:"offsets"`
	Freq      int   `json:"freq"`
	Phase     int   `json:"phase"`
	Amplitude int   `json:"amplitude"`
}

// MarshalJSON implements json.Marshaler.
func (p *Pattern) MarshalJSON() ([]byte, error) {
	out := patternJSON{ID: p.ID, Slots: p.Slots}
	for _, t := range p.Tuples {
		out.Tuples = append(out.Tuples, tupleJSON(t))
	}
	return json.Marshal(out)
}

// UnmarshalJSON implements json.Unmarshaler and validates the decoded
// pattern.
func (p *Pattern) UnmarshalJSON(data []byte) error {
	var in patternJSON
	if err := json.Unmarshal(data, &in); err != nil {
		return fmt.Errorf("pattern: %w", err)
	}
	decoded := Pattern{ID: in.ID, Slots: in.Slots}
	for _, t := range in.Tuples {
		decoded.Tuples = append(decoded.Tuples, Tuple(t))
	}
	if err := decoded.Validate(); err != nil {
		return err
	}
	*p = decoded
	return nil
}

// Encode renders the pattern as indented JSON.
func (p *Pattern) Encode() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Decode parses a pattern from JSON produced by Encode (or by hand) and
// validates it.
func Decode(data []byte) (*Pattern, error) {
	var p Pattern
	if err := json.Unmarshal(data, &p); err != nil {
		return nil, err
	}
	return &p, nil
}
