// Package pattern implements non-uniform (frequency-domain) hammering
// patterns in the style of Blacksmith/ZenHammer, which ρHammer builds
// on: an ordered sequence of aggressor rows in which each aggressor
// tuple appears with its own frequency, phase and amplitude. Patterns
// that keep decoy tuples' per-refresh-interval activation counts above
// the true aggressors' counts evade the TRR sampler.
//
// A pattern encodes only *relative* row offsets; the hammer package maps
// it to concrete banks and base rows, and the sweep package re-applies
// one pattern across many physical locations.
package pattern

import (
	"fmt"
	"sort"
	"strings"
)

// Tuple is one aggressor group of a pattern. A classic double-sided pair
// has Offsets [o, o+2] (sandwiching victim o+1); decoy tuples often have
// a single offset.
type Tuple struct {
	// Offsets are row offsets relative to the pattern base, ascending.
	Offsets []int
	// Freq is how many times the tuple appears per pattern period.
	Freq int
	// Phase is the slot index of the tuple's first appearance.
	Phase int
	// Amplitude is how many back-to-back repeats of the tuple occur at
	// each appearance (a1 a2 a1 a2 ... ).
	Amplitude int
}

// Pattern is one complete non-uniform hammering pattern.
type Pattern struct {
	ID     uint64
	Slots  int // nominal period length in accesses
	Tuples []Tuple
}

// String gives a compact description for logs and reports.
func (p *Pattern) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "pattern %d [%d slots]:", p.ID, p.Slots)
	for _, t := range p.Tuples {
		fmt.Fprintf(&sb, " %v f=%d ph=%d a=%d;", t.Offsets, t.Freq, t.Phase, t.Amplitude)
	}
	return sb.String()
}

// MaxOffset returns the largest aggressor row offset used.
func (p *Pattern) MaxOffset() int {
	m := 0
	for _, t := range p.Tuples {
		for _, o := range t.Offsets {
			if o > m {
				m = o
			}
		}
	}
	return m
}

// AggressorOffsets returns the sorted distinct row offsets.
func (p *Pattern) AggressorOffsets() []int {
	set := map[int]bool{}
	for _, t := range p.Tuples {
		for _, o := range t.Offsets {
			set[o] = true
		}
	}
	out := make([]int, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// VictimOffsets returns the row offsets adjacent to any aggressor — the
// candidate flip locations the templating step checks.
func (p *Pattern) VictimOffsets() []int {
	aggr := map[int]bool{}
	for _, t := range p.Tuples {
		for _, o := range t.Offsets {
			aggr[o] = true
		}
	}
	set := map[int]bool{}
	for o := range aggr {
		for _, d := range []int{-2, -1, 1, 2} {
			if !aggr[o+d] {
				set[o+d] = true
			}
		}
	}
	out := make([]int, 0, len(set))
	for o := range set {
		out = append(out, o)
	}
	sort.Ints(out)
	return out
}

// Render expands the pattern into its ordered access sequence of row
// offsets for one period. Each appearance of a tuple is assigned the
// fractional time position Phase + k*Slots/Freq (k < Freq); appearances
// from all tuples are then merged in time order, each expanding to
// Amplitude back-to-back repeats of the tuple's offsets. This keeps the
// per-tuple access ratios uniform over any sub-window of the period —
// the property that lets decoys dominate the TRR sampler in *every*
// refresh interval, wherever the interval boundary lands.
func (p *Pattern) Render() []int {
	if p.Slots <= 0 {
		return nil
	}
	type appearance struct {
		pos   float64
		order int // stable tie-break: tuple index
		tuple *Tuple
	}
	// Size both slices exactly up front: Render sits on the fuzzing
	// campaigns' per-candidate path, and appending from nil was one of
	// the package's top allocation sites in the table6 heap profile.
	nApps, nOut := 0, 0
	for i := range p.Tuples {
		t := &p.Tuples[i]
		if t.Freq <= 0 || len(t.Offsets) == 0 {
			continue
		}
		nApps += t.Freq
		amp := t.Amplitude
		if amp < 1 {
			amp = 1
		}
		nOut += t.Freq * amp * len(t.Offsets)
	}
	apps := make([]appearance, 0, nApps)
	for i := range p.Tuples {
		t := &p.Tuples[i]
		if t.Freq <= 0 || len(t.Offsets) == 0 {
			continue
		}
		step := float64(p.Slots) / float64(t.Freq)
		for k := 0; k < t.Freq; k++ {
			apps = append(apps, appearance{
				pos:   float64(t.Phase) + float64(k)*step,
				order: i,
				tuple: t,
			})
		}
	}
	sort.SliceStable(apps, func(a, b int) bool {
		if apps[a].pos != apps[b].pos {
			return apps[a].pos < apps[b].pos
		}
		return apps[a].order < apps[b].order
	})
	out := make([]int, 0, nOut)
	for _, a := range apps {
		amp := a.tuple.Amplitude
		if amp < 1 {
			amp = 1
		}
		for rep := 0; rep < amp; rep++ {
			out = append(out, a.tuple.Offsets...)
		}
	}
	return out
}

// Validate performs sanity checks and returns a descriptive error for
// malformed patterns (the fuzzer never produces these; the public API
// accepts user patterns).
func (p *Pattern) Validate() error {
	if p.Slots <= 0 {
		return fmt.Errorf("pattern %d: Slots must be positive, got %d", p.ID, p.Slots)
	}
	if len(p.Tuples) == 0 {
		return fmt.Errorf("pattern %d: no tuples", p.ID)
	}
	for i, t := range p.Tuples {
		if len(t.Offsets) == 0 {
			return fmt.Errorf("pattern %d: tuple %d has no offsets", p.ID, i)
		}
		if t.Freq <= 0 {
			return fmt.Errorf("pattern %d: tuple %d has non-positive frequency %d", p.ID, i, t.Freq)
		}
		if t.Amplitude < 0 {
			return fmt.Errorf("pattern %d: tuple %d has negative amplitude %d", p.ID, i, t.Amplitude)
		}
		for _, o := range t.Offsets {
			if o < 0 {
				return fmt.Errorf("pattern %d: tuple %d has negative offset %d", p.ID, i, o)
			}
		}
	}
	return nil
}

// DoubleSided returns the classic uniform double-sided pattern (two
// aggressors sandwiching one victim, hammered back-to-back). TRR defeats
// it on every DIMM in this repository — it exists as the negative
// control the paper's background section describes.
func DoubleSided(slots int) *Pattern {
	return &Pattern{
		ID:    1,
		Slots: slots,
		Tuples: []Tuple{
			{Offsets: []int{0, 2}, Freq: slots / 2, Phase: 0, Amplitude: 1},
		},
	}
}

// KnownGood returns a hand-crafted TRR-bypassing non-uniform pattern
// used by tests and by experiments that need a deterministic "best
// pattern": hammered pairs protected by higher-count decoy rows that
// dominate the TRR sampler in every refresh interval. All revisit
// distances are kept wide so that accesses do not merge in the fill
// buffers and every access yields a row activation.
func KnownGood() *Pattern {
	return &Pattern{
		ID:    2,
		Slots: 160,
		Tuples: []Tuple{
			// Decoys: highest per-interval activation counts,
			// sacrificial, spread so they never merge.
			{Offsets: []int{40}, Freq: 36, Phase: 0, Amplitude: 1},
			{Offsets: []int{46}, Freq: 36, Phase: 2, Amplitude: 1},
			// True aggressor pairs: moderate counts, spread phases.
			{Offsets: []int{0, 2}, Freq: 12, Phase: 1, Amplitude: 1},
			{Offsets: []int{8, 10}, Freq: 12, Phase: 5, Amplitude: 1},
			{Offsets: []int{16, 18}, Freq: 12, Phase: 9, Amplitude: 1},
			{Offsets: []int{24, 26}, Freq: 12, Phase: 13, Amplitude: 1},
		},
	}
}

// KnownGoodTight returns a variant of KnownGood whose true aggressor
// pairs use back-to-back amplitude repeats — the structure whose order
// (and flip yield) collapses under deep speculation and is restored by
// the NOP pseudo-barrier sweep of Fig. 10.
func KnownGoodTight() *Pattern {
	return &Pattern{
		ID:    3,
		Slots: 160,
		Tuples: []Tuple{
			{Offsets: []int{40}, Freq: 36, Phase: 0, Amplitude: 1},
			{Offsets: []int{46}, Freq: 36, Phase: 2, Amplitude: 1},
			{Offsets: []int{0, 2}, Freq: 6, Phase: 1, Amplitude: 2},
			{Offsets: []int{8, 10}, Freq: 6, Phase: 5, Amplitude: 2},
			{Offsets: []int{16, 18}, Freq: 6, Phase: 9, Amplitude: 2},
			{Offsets: []int{24, 26}, Freq: 6, Phase: 13, Amplitude: 2},
		},
	}
}
