module rhohammer

go 1.22
