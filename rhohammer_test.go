package rhohammer

import "testing"

func TestAttackDefaults(t *testing.T) {
	atk, err := NewAttack(Options{})
	if err != nil {
		t.Fatal(err)
	}
	if atk.Arch().Name != "Raptor Lake" || atk.DIMM().ID != "S3" {
		t.Errorf("defaults: %s / %s", atk.Arch().Name, atk.DIMM().ID)
	}
	if atk.GroundTruthMapping() == nil || atk.Session() == nil {
		t.Error("accessors returned nil")
	}
}

func TestAttackRejectsImpossiblePlatform(t *testing.T) {
	bad := RaptorLake()
	bad.MappingFamily = "unknown"
	if _, err := NewAttack(Options{Arch: bad}); err == nil {
		t.Error("unknown mapping family accepted")
	}
}

func TestRecoverMappingMatchesGroundTruth(t *testing.T) {
	for _, mk := range []func() *Arch{CometLake, RaptorLake} {
		atk, err := NewAttack(Options{Arch: mk(), Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		m, err := atk.RecoverMapping()
		if err != nil {
			t.Fatalf("%s: %v", atk.Arch().Name, err)
		}
		if !m.Equal(atk.GroundTruthMapping()) {
			t.Errorf("%s: recovered mapping differs from truth", atk.Arch().Name)
		}
	}
}

func TestRecommendedConfigs(t *testing.T) {
	atk, _ := NewAttack(Options{Arch: AlderLake()})
	multi := atk.RecommendedConfig()
	single := atk.RecommendedSingleBankConfig()
	if multi.Banks <= single.Banks {
		t.Error("multi-bank config should use more banks")
	}
	if multi.Nops >= single.Nops {
		t.Error("single-bank config should use more NOPs")
	}
	if !multi.Obfuscate || !single.Obfuscate {
		t.Error("counter-speculation must include obfuscation")
	}
}

// The package-level story: baseline dead on Raptor Lake, ρHammer alive.
func TestFacadeEndToEndFlow(t *testing.T) {
	if testing.Short() {
		t.Skip("integration flow")
	}
	atk, err := NewAttack(Options{Arch: RaptorLake(), DIMM: DIMMS3(), Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	bl, err := atk.Hammer(KnownGood(), BaselineConfig(), 0, 4096, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if bl.FlipCount() != 0 {
		t.Errorf("baseline flipped %d bits on Raptor Lake", bl.FlipCount())
	}
	rho, err := atk.Hammer(KnownGood(), atk.RecommendedConfig(), 0, 4096, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if rho.FlipCount() == 0 {
		t.Error("rhoHammer produced no flips")
	}

	sw, err := atk.Sweep(KnownGood(), SweepOptions{Locations: 4, DurationPerLocationNS: 120e6})
	if err != nil {
		t.Fatal(err)
	}
	if sw.TotalFlips == 0 {
		t.Error("sweep found no flips")
	}

	ex, err := atk.Exploit(ExploitOptions{Regions: 8})
	if err != nil {
		t.Fatalf("exploit: %v", err)
	}
	if !ex.Success {
		t.Error("exploit did not reach page-table R/W")
	}
}

func TestTuneCounterSpec(t *testing.T) {
	if testing.Short() {
		t.Skip("tuning sweep")
	}
	atk, _ := NewAttack(Options{Arch: AlderLake(), Seed: 5})
	tune, err := atk.TuneCounterSpec()
	if err != nil {
		t.Fatal(err)
	}
	if tune.BestFlips == 0 {
		t.Error("tuning found no flips on Alder Lake")
	}
}

func TestPTRROptionBlocksAttack(t *testing.T) {
	if testing.Short() {
		t.Skip("mitigation check")
	}
	atk, err := NewAttack(Options{Arch: CometLake(), DIMM: DIMMS4(), Seed: 9, PTRR: true})
	if err != nil {
		t.Fatal(err)
	}
	res, err := atk.Hammer(KnownGood(), atk.RecommendedConfig(), 0, 4096, 200e6)
	if err != nil {
		t.Fatal(err)
	}
	if res.FlipCount() != 0 {
		t.Errorf("pTRR enabled but %d flips", res.FlipCount())
	}
}

func TestFuzzWithBothStrategies(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz campaign")
	}
	atk, _ := NewAttack(Options{Arch: CometLake(), DIMM: DIMMS4(), Seed: 11})
	opt := FuzzOptions{Patterns: 5, Locations: 1, DurationNS: 120e6}
	rho, err := atk.Fuzz(opt)
	if err != nil {
		t.Fatal(err)
	}
	bl, err := atk.FuzzWith(BaselineConfig(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if rho.TotalFlips <= bl.TotalFlips {
		t.Errorf("rho fuzzing (%d) should beat baseline (%d) on Comet/S4",
			rho.TotalFlips, bl.TotalFlips)
	}
}
