package rhohammer_test

import (
	"fmt"

	"rhohammer"
)

// ExampleAttack_RecoverMapping demonstrates Algorithm 1 against the
// Raptor Lake platform: the full mapping — including the wide bank
// functions with no pure row bits — comes back in simulated seconds.
func ExampleAttack_RecoverMapping() {
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.RaptorLake(),
		DIMM: rhohammer.DIMMS3(),
		Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	m, err := atk.RecoverMapping()
	if err != nil {
		panic(err)
	}
	fmt.Println(m.Equal(atk.GroundTruthMapping()))
	fmt.Println(m)
	// Output:
	// true
	// Bank Func: (9, 11, 13), (15, 19), (17, 21, 22, 25, 28, 31), (14, 18, 26, 29, 32), (16, 20, 23, 24, 27, 30, 33); Row: 18-33
}

// ExampleAttack_Hammer contrasts the dead load-based baseline with
// ρHammer's counter-speculation prefetching on Raptor Lake.
func ExampleAttack_Hammer() {
	atk, err := rhohammer.NewAttack(rhohammer.Options{
		Arch: rhohammer.RaptorLake(),
		DIMM: rhohammer.DIMMS4(),
		Seed: 7,
	})
	if err != nil {
		panic(err)
	}
	baseline, _ := atk.Hammer(rhohammer.KnownGood(), rhohammer.BaselineConfig(), 0, 4096, 200e6)
	rho, _ := atk.Hammer(rhohammer.KnownGood(), atk.RecommendedConfig(), 0, 4096, 200e6)
	fmt.Println("baseline flips:", baseline.FlipCount())
	fmt.Println("rhoHammer flips >= 10:", rho.FlipCount() >= 10)
	// Output:
	// baseline flips: 0
	// rhoHammer flips >= 10: true
}
